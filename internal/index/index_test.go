package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 7}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if got := iv.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) || iv.Contains(2) {
		t.Fatal("Contains boundary behaviour wrong")
	}
	empty := Interval{5, 4}
	if !empty.Empty() || empty.Len() != 0 {
		t.Fatal("empty interval misreported")
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{Interval{1, 5}, Interval{3, 9}, Interval{3, 5}},
		{Interval{1, 5}, Interval{6, 9}, Interval{6, 5}},
		{Interval{1, 9}, Interval{3, 4}, Interval{3, 4}},
		{Interval{5, 5}, Interval{5, 5}, Interval{5, 5}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Empty() != c.want.Empty() {
			t.Errorf("%v ∩ %v emptiness = %v", c.a, c.b, got)
			continue
		}
		if !got.Empty() && got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRangeAndSingle(t *testing.T) {
	s := Range(2, 6)
	if s.Len() != 5 || s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("Range(2,6) = %v", s)
	}
	if !Range(6, 2).Empty() {
		t.Fatal("inverted range should be empty")
	}
	if got := Single(4).Slice(); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("Single(4) = %v", got)
	}
}

func TestStrided(t *testing.T) {
	s := Strided(1, 10, 3)
	want := []int{1, 4, 7, 10}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Strided = %v, want %v", got, want)
	}
	if got := Strided(1, 10, 1); !got.Equal(Range(1, 10)) {
		t.Fatalf("stride-1 should equal Range: %v", got)
	}
	if !Strided(5, 4, 2).Empty() {
		t.Fatal("empty strided range")
	}
}

func TestStridedPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stride 0")
		}
	}()
	Strided(1, 5, 0)
}

func TestFromIntervalsNormalizes(t *testing.T) {
	s := FromIntervals(Interval{5, 9}, Interval{1, 3}, Interval{4, 4}, Interval{20, 10})
	// 1..3 and 4..4 and 5..9 are adjacent and must merge to 1..9.
	if s.NumIntervals() != 1 || !s.Equal(Range(1, 9)) {
		t.Fatalf("normalization failed: %v", s)
	}
}

func TestFromSlice(t *testing.T) {
	s := FromSlice([]int{7, 1, 2, 2, 3, 9})
	if got, want := s.String(), "{[1..3] [7] [9]}"; got != want {
		t.Fatalf("FromSlice = %s, want %s", got, want)
	}
}

func TestContains(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 10, 11, 40})
	for _, x := range []int{1, 2, 3, 10, 11, 40} {
		if !s.Contains(x) {
			t.Errorf("should contain %d", x)
		}
	}
	for _, x := range []int{0, 4, 9, 12, 39, 41} {
		if s.Contains(x) {
			t.Errorf("should not contain %d", x)
		}
	}
	if Empty.Contains(0) {
		t.Error("empty set contains nothing")
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a := Range(1, 10)
	b := FromIntervals(Interval{5, 15})
	if got := a.Union(b); !got.Equal(Range(1, 15)) {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(Range(5, 10)) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(Range(1, 4)) {
		t.Fatalf("minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(Range(11, 15)) {
		t.Fatalf("minus2 = %v", got)
	}
}

func TestMinusSplitsIntervals(t *testing.T) {
	a := Range(1, 100)
	b := FromIntervals(Interval{10, 20}, Interval{50, 60})
	got := a.Minus(b)
	want := FromIntervals(Interval{1, 9}, Interval{21, 49}, Interval{61, 100})
	if !got.Equal(want) {
		t.Fatalf("minus = %v, want %v", got, want)
	}
}

func TestShiftAndAffine(t *testing.T) {
	s := FromIntervals(Interval{1, 3}, Interval{7, 8})
	if got := s.Shift(10); got.String() != "{[11..13] [17..18]}" {
		t.Fatalf("shift = %v", got)
	}
	if got := s.Affine(1, -1); !got.Equal(s.Shift(-1)) {
		t.Fatalf("affine(1,-1) = %v", got)
	}
	if got := s.Affine(-1, 0); got.String() != "{[-8..-7] [-3..-1]}" {
		t.Fatalf("affine(-1,0) = %v", got)
	}
	if got := Range(1, 3).Affine(2, 0); !got.Equal(FromSlice([]int{2, 4, 6})) {
		t.Fatalf("affine(2,0) = %v", got)
	}
}

func TestInverseAffine(t *testing.T) {
	// x+1 ∈ [5..10]  ⇒ x ∈ [4..9]
	if got := Range(5, 10).InverseAffine(1, 1); !got.Equal(Range(4, 9)) {
		t.Fatalf("inv(1,1) = %v", got)
	}
	// 2x ∈ [5..10] ⇒ x ∈ [3..5]
	if got := Range(5, 10).InverseAffine(2, 0); !got.Equal(Range(3, 5)) {
		t.Fatalf("inv(2,0) = %v", got)
	}
	// -x ∈ [5..10] ⇒ x ∈ [-10..-5]
	if got := Range(5, 10).InverseAffine(-1, 0); !got.Equal(Range(-10, -5)) {
		t.Fatalf("inv(-1,0) = %v", got)
	}
	// 3x+1 ∈ [2..4] ⇒ x ∈ {1}
	if got := Range(2, 4).InverseAffine(3, 1); !got.Equal(Single(1)) {
		t.Fatalf("inv(3,1) = %v", got)
	}
	// empty preimage
	if got := Range(2, 2).InverseAffine(3, 0); !got.Empty() {
		t.Fatalf("inv of unreachable point = %v", got)
	}
}

func TestSubsetEqual(t *testing.T) {
	a := Range(3, 6)
	b := Range(1, 10)
	if !a.Subset(b) || b.Subset(a) {
		t.Fatal("subset relation wrong")
	}
	if !a.Subset(a) || !Empty.Subset(a) {
		t.Fatal("reflexivity / empty subset wrong")
	}
	if a.Equal(b) || !a.Equal(Range(3, 6)) {
		t.Fatal("equality wrong")
	}
}

func TestEachOrder(t *testing.T) {
	s := FromIntervals(Interval{5, 6}, Interval{1, 2})
	var got []int
	s.Each(func(x int) { got = append(got, x) })
	if !reflect.DeepEqual(got, []int{1, 2, 5, 6}) {
		t.Fatalf("Each order = %v", got)
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for _, f := range []func(){func() { Empty.Min() }, func() { Empty.Max() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on empty set")
				}
			}()
			f()
		}()
	}
}

func TestStringForms(t *testing.T) {
	if Empty.String() != "{}" {
		t.Fatalf("empty string = %q", Empty.String())
	}
	if got := Single(3).String(); got != "{[3]}" {
		t.Fatalf("singleton = %q", got)
	}
}

// randomSet builds a random set over a small universe for property tests.
func randomSet(r *rand.Rand) Set {
	n := r.Intn(12)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.Intn(40) - 10
	}
	return FromSlice(xs)
}

// asMap converts a set to a map for model-based checking.
func asMap(s Set) map[int]bool {
	m := map[int]bool{}
	s.Each(func(x int) { m[x] = true })
	return m
}

func fromMap(m map[int]bool) Set {
	xs := make([]int, 0, len(m))
	for x := range m {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	return FromSlice(xs)
}

// TestQuickSetAlgebra model-checks union/intersect/minus against maps.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		ma, mb := asMap(a), asMap(b)

		mu := map[int]bool{}
		for x := range ma {
			mu[x] = true
		}
		for x := range mb {
			mu[x] = true
		}
		mi := map[int]bool{}
		for x := range ma {
			if mb[x] {
				mi[x] = true
			}
		}
		md := map[int]bool{}
		for x := range ma {
			if !mb[x] {
				md[x] = true
			}
		}
		return a.Union(b).Equal(fromMap(mu)) &&
			a.Intersect(b).Equal(fromMap(mi)) &&
			a.Minus(b).Equal(fromMap(md))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlgebraicLaws checks the identities from DESIGN.md §6.
func TestQuickAlgebraicLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		// commutativity
		if !a.Union(b).Equal(b.Union(a)) || !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// idempotence
		if !a.Union(a).Equal(a) || !a.Intersect(a).Equal(a) {
			return false
		}
		// partition: (a ∖ b) ∪ (a ∩ b) == a
		if !a.Minus(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// a ∖ b and b are disjoint
		if !a.Minus(b).Intersect(b).Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormalForm checks the representation invariant after random ops.
func TestQuickNormalForm(t *testing.T) {
	check := func(s Set) bool {
		prev := Interval{0, -1}
		for i, iv := range s.Intervals() {
			if iv.Empty() {
				return false
			}
			if i > 0 && iv.Lo <= prev.Hi+1 { // must be disjoint and non-adjacent
				return false
			}
			prev = iv
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		return check(a.Union(b)) && check(a.Intersect(b)) && check(a.Minus(b)) &&
			check(a.Shift(r.Intn(7)-3)) && check(a.InverseAffine(1+r.Intn(3), r.Intn(5)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInverseAffine: x ∈ InverseAffine(a,c)(s) ⇔ a*x+c ∈ s over a window.
func TestQuickInverseAffine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r)
		a := []int{1, -1, 2, 3, -2}[r.Intn(5)]
		c := r.Intn(9) - 4
		inv := s.InverseAffine(a, c)
		for x := -60; x <= 60; x++ {
			if inv.Contains(x) != s.Contains(a*x+c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectLarge(b *testing.B) {
	var ivs1, ivs2 []Interval
	for i := 0; i < 1000; i++ {
		ivs1 = append(ivs1, Interval{i * 10, i*10 + 4})
		ivs2 = append(ivs2, Interval{i*10 + 3, i*10 + 8})
	}
	s1, s2 := FromIntervals(ivs1...), FromIntervals(ivs2...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s1.Intersect(s2)
	}
}

func BenchmarkContains(b *testing.B) {
	var ivs []Interval
	for i := 0; i < 1000; i++ {
		ivs = append(ivs, Interval{i * 10, i*10 + 4})
	}
	s := FromIntervals(ivs...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Contains((i * 7) % 10000)
	}
}

func TestIntervalOverlapsAndShift(t *testing.T) {
	a, b := Interval{1, 5}, Interval{5, 9}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("touching intervals overlap")
	}
	if a.Overlaps(Interval{6, 9}) {
		t.Fatal("disjoint intervals must not overlap")
	}
	if got := a.Shift(3); got != (Interval{4, 8}) {
		t.Fatalf("Shift = %v", got)
	}
}

// TestLinearize2 checks the row-major rectangle linearization.
func TestLinearize2(t *testing.T) {
	// 3 rows × cols {2,3} over width 4: rows 2..4.
	got := Linearize2(Range(2, 4), Range(2, 3), 4)
	want := FromIntervals(Interval{6, 7}, Interval{10, 11}, Interval{14, 15})
	if !got.Equal(want) {
		t.Fatalf("Linearize2 = %v, want %v", got, want)
	}
	// Full-width adjacent rows merge into one interval.
	full := Linearize2(Range(2, 3), Range(1, 4), 4)
	if full.NumIntervals() != 1 || !full.Equal(Range(5, 12)) {
		t.Fatalf("full-width rows = %v, want {[5..12]}", full)
	}
	if !Linearize2(Set{}, Range(1, 2), 4).Empty() || !Linearize2(Range(1, 2), Set{}, 4).Empty() {
		t.Fatal("empty factor should give empty product")
	}
	// Strided columns stay per-row.
	s := Linearize2(Single(2), Strided(1, 4, 2), 4)
	if !s.Equal(FromIntervals(Interval{5, 5}, Interval{7, 7})) {
		t.Fatalf("strided = %v", s)
	}
}
