// Command kalibench regenerates the paper's evaluation tables
// (Figures 7–10), the §4 text numbers, and the ablations listed in
// DESIGN.md §4, printing measured values side by side with the
// published ones.
//
// Usage:
//
//	kalibench                  # every experiment, full size
//	kalibench -table fig7      # one experiment
//	kalibench -quick           # shrunken sizes (seconds, for smoke tests)
//	kalibench -list            # show experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"kali/internal/bench"
)

func main() {
	table := flag.String("table", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "use shrunken problem sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	opt := bench.Options{Quick: *quick}
	if *table == "all" {
		for _, t := range bench.All(opt) {
			fmt.Println(t.Render())
		}
		return
	}
	gen, ok := bench.Registry[*table]
	if !ok {
		fmt.Fprintf(os.Stderr, "kalibench: unknown experiment %q (use -list)\n", *table)
		os.Exit(2)
	}
	fmt.Println(gen(opt).Render())
}
