// Command kalibench regenerates the paper's evaluation tables
// (Figures 7–10), the §4 text numbers, and the ablations listed in
// DESIGN.md §4, printing measured values side by side with the
// published ones.
//
// Usage:
//
//	kalibench                  # every experiment, full size
//	kalibench -table fig7      # one experiment
//	kalibench -quick           # shrunken sizes (seconds, for smoke tests)
//	kalibench -json            # machine-readable output (CI artifacts)
//	kalibench -list            # show experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"kali/internal/bench"
)

func main() {
	table := flag.String("table", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "use shrunken problem sizes")
	asJSON := flag.Bool("json", false, "emit tables as JSON instead of text")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	opt := bench.Options{Quick: *quick}
	var tables []*bench.Table
	if *table == "all" {
		tables = bench.All(opt)
	} else {
		gen, ok := bench.Registry[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "kalibench: unknown experiment %q (use -list)\n", *table)
			os.Exit(2)
		}
		tables = []*bench.Table{gen(opt)}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "kalibench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}
