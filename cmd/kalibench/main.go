// Command kalibench regenerates the paper's evaluation tables
// (Figures 7–10), the §4 text numbers, and the ablations listed in
// DESIGN.md §4, printing measured values side by side with the
// published ones.
//
// Usage:
//
//	kalibench                  # every experiment, full size
//	kalibench -table fig7      # one experiment
//	kalibench -quick           # shrunken sizes (seconds, for smoke tests)
//	kalibench -json            # machine-readable output (CI artifacts)
//	kalibench -list            # show experiment ids
//	kalibench -quick -diff bench/baseline.json
//	                           # regression gate: rerun and compare
//	                           # against a committed -json baseline,
//	                           # exit 1 if sim times or schedule memory
//	                           # grew beyond -tol
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"kali/internal/bench"
)

func main() {
	table := flag.String("table", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "use shrunken problem sizes")
	asJSON := flag.Bool("json", false, "emit tables as JSON instead of text")
	list := flag.Bool("list", false, "list experiment ids and exit")
	diff := flag.String("diff", "", "baseline JSON file to compare this run against (CI regression gate)")
	tol := flag.Float64("tol", 0.05, "relative tolerance for -diff cost comparisons")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	// Load the baseline before generating anything, so a bad -diff path
	// fails immediately instead of after the whole suite has run.
	var baseline []*bench.Table
	if *diff != "" {
		raw, err := os.ReadFile(*diff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kalibench: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "kalibench: bad baseline %s: %v\n", *diff, err)
			os.Exit(1)
		}
		// Compare only what this invocation runs: with -table X the
		// unselected baseline entries are not missing, just not rerun —
		// but a selected table absent from the baseline would make the
		// comparison vacuous, so refuse it.
		if *table != "all" {
			var kept []*bench.Table
			for _, b := range baseline {
				if b.ID == *table {
					kept = append(kept, b)
				}
			}
			if len(kept) == 0 {
				fmt.Fprintf(os.Stderr, "kalibench: table %q not in baseline %s (regenerate it)\n", *table, *diff)
				os.Exit(1)
			}
			baseline = kept
		}
	}

	opt := bench.Options{Quick: *quick}
	var tables []*bench.Table
	if *table == "all" {
		tables = bench.All(opt)
	} else {
		gen, ok := bench.Registry[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "kalibench: unknown experiment %q (use -list)\n", *table)
			os.Exit(2)
		}
		tables = []*bench.Table{gen(opt)}
	}

	if *diff != "" {
		regs := bench.Compare(baseline, tables, *tol)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "kalibench: %d schedule-cost regression(s) vs %s (tol %.0f%%):\n",
				len(regs), *diff, *tol*100)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			fmt.Fprintln(os.Stderr, "if the cost change is intentional, regenerate the baseline:")
			fmt.Fprintln(os.Stderr, "  go run ./cmd/kalibench -quick -json > bench/baseline.json")
			os.Exit(1)
		}
		// Report on stderr so -json -diff can emit the artifact and
		// gate the costs in one suite run.
		fmt.Fprintf(os.Stderr, "kalibench: %d table(s) within %.0f%% of %s\n", len(tables), *tol*100, *diff)
		if !*asJSON {
			return
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "kalibench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}
