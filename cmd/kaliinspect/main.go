// Command kaliinspect prints the communication analysis of a shift
// loop — the sets exec(p), execLocal, execNonlocal, in(p,q) and
// out(p,q) of paper §3 — for a chosen distribution, processor count
// and subscript.  It makes Figures 2 and 3 of the paper tangible: the
// same loop under different distributions produces radically different
// message sets, which is exactly the detail the global name space
// hides from the programmer.
//
// Usage:
//
//	kaliinspect [-n 16] [-p 4] [-dist block|cyclic|blockcyclic:B] [-a 1] [-c 1]
//
// analyzes: forall i in 1..n-? on A[i].loc do ... A[a*i+c] ... end
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"kali/internal/analysis"
	"kali/internal/dist"
	"kali/internal/index"
)

func sortedKeys(m map[int]index.Set) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func main() {
	n := flag.Int("n", 16, "array extent")
	p := flag.Int("p", 4, "processors")
	distName := flag.String("dist", "block", "block, cyclic, or blockcyclic:B")
	a := flag.Int("a", 1, "subscript coefficient (reads A[a*i+c])")
	c := flag.Int("c", 1, "subscript offset")
	flag.Parse()

	var pat dist.Pattern
	switch {
	case *distName == "block":
		pat = dist.NewBlock(*n, *p)
	case *distName == "cyclic":
		pat = dist.NewCyclic(*n, *p)
	case strings.HasPrefix(*distName, "blockcyclic:"):
		b, err := strconv.Atoi(strings.TrimPrefix(*distName, "blockcyclic:"))
		if err != nil || b < 1 {
			fmt.Fprintln(os.Stderr, "kaliinspect: bad block size in -dist")
			os.Exit(2)
		}
		pat = dist.NewBlockCyclic(*n, *p, b)
	default:
		fmt.Fprintf(os.Stderr, "kaliinspect: unknown distribution %q\n", *distName)
		os.Exit(2)
	}

	g := analysis.Affine{A: *a, C: *c}
	lo, hi := 1, *n
	// Clamp the range so the read stays in bounds.
	for g.Apply(lo) < 1 || g.Apply(lo) > *n {
		lo++
		if lo > *n {
			fmt.Println("empty iteration range")
			return
		}
	}
	for g.Apply(hi) < 1 || g.Apply(hi) > *n {
		hi--
	}

	fmt.Printf("loop:  forall i in %d..%d on A[i].loc do ... A[%s] ... end\n", lo, hi, subscript(*a, *c))
	fmt.Printf("dist:  A %s over %d processors\n\n", pat, *p)

	reads := []analysis.Read{{Pat: pat, G: g}}
	for q := 0; q < *p; q++ {
		s := analysis.Compute(pat, analysis.Identity, lo, hi, reads, q)
		fmt.Printf("processor %d:\n", q)
		fmt.Printf("  local(p)      = %v\n", pat.Local(q))
		fmt.Printf("  exec(p)       = %v\n", s.Exec)
		fmt.Printf("  exec ∩ ref    = %v   (local iterations)\n", s.ExecLocal)
		fmt.Printf("  exec - ref    = %v   (nonlocal iterations)\n", s.ExecNonlocal)
		for _, peer := range sortedKeys(s.In[0]) {
			fmt.Printf("  in(p,%d)       = %v\n", peer, s.In[0][peer])
		}
		for _, peer := range sortedKeys(s.Out[0]) {
			fmt.Printf("  out(p,%d)      = %v\n", peer, s.Out[0][peer])
		}
	}
}

func subscript(a, c int) string {
	var s string
	switch a {
	case 1:
		s = "i"
	case -1:
		s = "-i"
	default:
		s = fmt.Sprintf("%d*i", a)
	}
	switch {
	case c > 0:
		s += fmt.Sprintf("+%d", c)
	case c < 0:
		s += fmt.Sprint(c)
	}
	return s
}
