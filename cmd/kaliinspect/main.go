// Command kaliinspect prints the communication analysis of a shift
// loop — the sets exec(p), execLocal, execNonlocal, in(p,q) and
// out(p,q) of paper §3 — for a chosen distribution, processor count
// and subscript, in one or two dimensions.  It makes Figures 2 and 3
// of the paper tangible: the same loop under different distributions
// produces radically different message sets, which is exactly the
// detail the global name space hides from the programmer.
//
// After the closed-form sets it runs the loop on the simulated machine
// and reports how the schedule was actually built (compile-time vs
// inspector) and how much memory it occupies per processor.
//
// Usage:
//
//	kaliinspect [-n 16] [-p 4] [-dist block|cyclic|blockcyclic:B] [-a 1] [-c 1]
//	            [-force-inspector]
//
// analyzes: forall i in lo..hi on A[i].loc do ... A[a*i+c] ... end
//
//	kaliinspect -rank 2 [-n 8] [-n2 8] [-grid 2x2] [-dist ...] [-dist2 ...]
//	            [-c 1] [-c2 0] [-oa 1] [-oc 0] [-oa2 1] [-oc2 0]
//	            [-force-inspector]
//
// analyzes: forall i, j on A[oa*i+oc, oa2*j+oc2].loc do ... A[a*i+c, a2*j+c2] ... end
//
// For rank-2 loops it additionally prints the §5 executor-variant
// storage comparison: the same loop's schedule built compile-time, by
// the run-time inspector, and by Saltz-style full enumeration.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"kali/internal/analysis"
	"kali/internal/darray"
	"kali/internal/dist"
	"kali/internal/forall"
	"kali/internal/index"
	"kali/internal/machine"
	"kali/internal/machine/sim"
	"kali/internal/topology"
)

func sortedKeys(m map[int]index.Set) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// dimSpec parses one dimension's CLI spelling into its dist-clause
// form, exiting on malformed input.
func dimSpec(spec string) dist.DimSpec {
	switch {
	case spec == "block":
		return dist.BlockDim()
	case spec == "cyclic":
		return dist.CyclicDim()
	case strings.HasPrefix(spec, "blockcyclic:"):
		b, err := strconv.Atoi(strings.TrimPrefix(spec, "blockcyclic:"))
		if err != nil || b < 1 {
			fmt.Fprintln(os.Stderr, "kaliinspect: bad block size in distribution spec")
			os.Exit(2)
		}
		return dist.BlockCyclicDim(b)
	default:
		fmt.Fprintf(os.Stderr, "kaliinspect: unknown distribution %q\n", spec)
		os.Exit(2)
		return dist.DimSpec{}
	}
}

// pattern builds the index map of one parsed dimension spec.
func pattern(s dist.DimSpec, n, p int) dist.Pattern {
	switch s.Kind {
	case dist.Cyclic:
		return dist.NewCyclic(n, p)
	case dist.BlockCyclic:
		return dist.NewBlockCyclic(n, p, s.Block)
	default:
		return dist.NewBlock(n, p)
	}
}

func main() {
	rank := flag.Int("rank", 1, "loop rank: 1 or 2")
	n := flag.Int("n", 16, "array extent (rows for -rank 2)")
	n2 := flag.Int("n2", 8, "second array extent (-rank 2)")
	p := flag.Int("p", 4, "processors (-rank 1)")
	gridSpec := flag.String("grid", "2x2", "processor grid RxC (-rank 2)")
	distName := flag.String("dist", "block", "block, cyclic, or blockcyclic:B (first dimension)")
	dist2Name := flag.String("dist2", "block", "second dimension's distribution (-rank 2)")
	a := flag.Int("a", 1, "subscript coefficient (reads A[a*i+c])")
	c := flag.Int("c", 1, "subscript offset")
	a2 := flag.Int("a2", 1, "second-dimension subscript coefficient (-rank 2)")
	c2 := flag.Int("c2", 0, "second-dimension subscript offset (-rank 2)")
	oa := flag.Int("oa", 1, "on-clause subscript coefficient (-rank 2)")
	oc := flag.Int("oc", 0, "on-clause subscript offset (-rank 2)")
	oa2 := flag.Int("oa2", 1, "second-dimension on-clause coefficient (-rank 2)")
	oc2 := flag.Int("oc2", 0, "second-dimension on-clause offset (-rank 2)")
	force := flag.Bool("force-inspector", false, "disable compile-time analysis (contrast schedule cost)")
	flag.Parse()

	if *a == 0 || (*rank == 2 && (*a2 == 0 || *oa == 0 || *oa2 == 0)) {
		fmt.Fprintln(os.Stderr, "kaliinspect: subscript coefficients must be nonzero")
		os.Exit(2)
	}
	switch *rank {
	case 1:
		inspect1(*n, *p, *distName, *a, *c, *force)
	case 2:
		pr, pc := parseGrid(*gridSpec)
		onF := analysis.Affine2{I: analysis.Affine{A: *oa, C: *oc}, J: analysis.Affine{A: *oa2, C: *oc2}}
		inspect2(*n, *n2, pr, pc, *distName, *dist2Name, *a, *c, *a2, *c2, onF, *force)
	default:
		fmt.Fprintln(os.Stderr, "kaliinspect: -rank must be 1 or 2")
		os.Exit(2)
	}
}

func parseGrid(spec string) (int, int) {
	parts := strings.Split(spec, "x")
	if len(parts) == 2 {
		r, err1 := strconv.Atoi(parts[0])
		c, err2 := strconv.Atoi(parts[1])
		if err1 == nil && err2 == nil && r >= 1 && c >= 1 {
			return r, c
		}
	}
	fmt.Fprintf(os.Stderr, "kaliinspect: bad -grid %q (want RxC)\n", spec)
	os.Exit(2)
	return 0, 0
}

// clampRange shrinks [lo..hi] so g stays within [1..n].
func clampRange(g analysis.Affine, lo, hi, n int) (int, int) {
	for lo <= hi && (g.Apply(lo) < 1 || g.Apply(lo) > n) {
		lo++
	}
	for hi >= lo && (g.Apply(hi) < 1 || g.Apply(hi) > n) {
		hi--
	}
	return lo, hi
}

func inspect1(n, p int, distName string, a, c int, force bool) {
	spec := dimSpec(distName)
	pat := pattern(spec, n, p)
	g := analysis.Affine{A: a, C: c}
	lo, hi := clampRange(g, 1, n, n)
	if lo > hi {
		fmt.Println("empty iteration range")
		return
	}

	fmt.Printf("loop:  forall i in %d..%d on A[i].loc do ... A[%s] ... end\n", lo, hi, subscript(a, c, "i"))
	fmt.Printf("dist:  A %s over %d processors\n\n", pat, p)

	reads := []analysis.Read{{Pat: pat, G: g}}
	for q := 0; q < p; q++ {
		s := analysis.Compute(pat, analysis.Identity, lo, hi, reads, q)
		fmt.Printf("processor %d:\n", q)
		fmt.Printf("  local(p)      = %v\n", pat.Local(q))
		fmt.Printf("  exec(p)       = %v\n", s.Exec)
		fmt.Printf("  exec ∩ ref    = %v   (local iterations)\n", s.ExecLocal)
		fmt.Printf("  exec - ref    = %v   (nonlocal iterations)\n", s.ExecNonlocal)
		for _, peer := range sortedKeys(s.In[0]) {
			fmt.Printf("  in(p,%d)       = %v\n", peer, s.In[0][peer])
		}
		for _, peer := range sortedKeys(s.Out[0]) {
			fmt.Printf("  out(p,%d)      = %v\n", peer, s.Out[0][peer])
		}
	}

	// Build the schedule for real and report its provenance and memory.
	grid := topology.MustGrid(p)
	d := dist.Must([]int{n}, []dist.DimSpec{spec}, grid)
	aff := analysis.Affine{A: a, C: c}
	report := runSchedule(p, func(nd *machine.Node, eng *forall.Engine) *forall.Schedule {
		arr := darray.New("A", d, nd)
		eng.Run(&forall.Loop{
			Name: "inspect", Lo: lo, Hi: hi,
			On: arr, OnF: analysis.Identity,
			Reads: []forall.ReadSpec{{Array: arr, Affine: &aff}},
			Body:  func(i int, e *forall.Env) { _ = e.Read(arr, aff.Apply(i)) },
		})
		return eng.Schedule("inspect")
	}, force)
	printSchedule(report)
}

func inspect2(ny, nx, pr, pc int, dI, dJ string, aI, cI, aJ, cJ int, onF analysis.Affine2, force bool) {
	specI, specJ := dimSpec(dI), dimSpec(dJ)
	patI := pattern(specI, ny, pr)
	patJ := pattern(specJ, nx, pc)
	f2 := analysis.Affine2{I: analysis.Affine{A: aI, C: cI}, J: analysis.Affine{A: aJ, C: cJ}}
	// The loop range must keep both the on-clause and the read
	// subscripts inside the array.
	loI, hiI := clampRange(f2.I, 1, ny, ny)
	loI, hiI = clampRange(onF.I, loI, hiI, ny)
	loJ, hiJ := clampRange(f2.J, 1, nx, nx)
	loJ, hiJ = clampRange(onF.J, loJ, hiJ, nx)
	if loI > hiI || loJ > hiJ {
		fmt.Println("empty iteration range")
		return
	}

	fmt.Printf("loop:  forall i in %d..%d, j in %d..%d on A[%s, %s].loc do ... A[%s, %s] ... end\n",
		loI, hiI, loJ, hiJ,
		subscript(onF.I.A, onF.I.C, "i"), subscript(onF.J.A, onF.J.C, "j"),
		subscript(aI, cI, "i"), subscript(aJ, cJ, "j"))
	fmt.Printf("dist:  A [%s, %s] over a %dx%d grid\n\n", patI, patJ, pr, pc)

	reads := []analysis.Read2{{PatI: patI, PatJ: patJ, G: f2, Width: nx}}
	np := pr * pc
	for q := 0; q < np; q++ {
		s := analysis.Compute2(patI, patJ, onF, loI, hiI, loJ, hiJ, reads, q)
		fmt.Printf("processor %d (grid %d,%d):\n", q, q/pc, q%pc)
		fmt.Printf("  exec(p)       = %v × %v\n", s.ExecRows, s.ExecCols)
		fmt.Printf("  execLocal     = %v × %v\n", s.LocalRows, s.LocalCols)
		for _, peer := range sortedKeys(s.In[0]) {
			fmt.Printf("  in(p,%d)       = %v   (linearized)\n", peer, s.In[0][peer])
		}
		for _, peer := range sortedKeys(s.Out[0]) {
			fmt.Printf("  out(p,%d)      = %v   (linearized)\n", peer, s.Out[0][peer])
		}
	}

	grid := topology.MustGrid(pr, pc)
	d := dist.Must([]int{ny, nx}, []dist.DimSpec{specI, specJ}, grid)
	mkRun := func(enum bool) func(*machine.Node, *forall.Engine) *forall.Schedule {
		return func(nd *machine.Node, eng *forall.Engine) *forall.Schedule {
			arr := darray.New("A", d, nd)
			eng.Run2(&forall.Loop2{
				Name: "inspect2", LoI: loI, HiI: hiI, LoJ: loJ, HiJ: hiJ,
				On:        arr,
				OnF2:      onF,
				Reads:     []forall.ReadSpec{{Array: arr, Affine2: &f2}},
				Enumerate: enum,
				Body: func(i, j int, e *forall.Env) {
					_ = e.ReadAt(arr, f2.I.Apply(i), f2.J.Apply(j))
				},
			})
			return eng.Schedule2("inspect2")
		}
	}
	mainRep := runSchedule(np, mkRun(false), force)
	printSchedule(mainRep)

	// §5 storage comparison: the same loop's schedule under all three
	// executor variants.  The main report above already built one of
	// the precomputed variants, so only the other one is simulated.
	ctRep, inspRep := mainRep, runSchedule(np, mkRun(false), !force)
	if force {
		ctRep, inspRep = inspRep, ctRep
	}
	enumRep := runSchedule(np, mkRun(true), false)
	fmt.Printf("\nexecutor-variant storage (paper §5):\n")
	fmt.Printf("  %-20s %s\n", "variant", "schedule bytes/proc (max)")
	for _, v := range []struct {
		name string
		rep  schedReport
	}{
		{"kali (compile-time)", ctRep},
		{"kali (inspector)", inspRep},
		{"saltz (enumerate)", enumRep},
	} {
		mem := 0
		for _, m := range v.rep.mem {
			if m > mem {
				mem = m
			}
		}
		fmt.Printf("  %-20s %d\n", v.name, mem)
	}
}

// schedReport is the per-processor outcome of an actual schedule build.
type schedReport struct {
	kind     forall.BuildKind
	mem      []int
	local    []int
	nonlocal []int
	recv     []int
}

// runSchedule executes the loop once on a simulated machine and
// collects each node's schedule.
func runSchedule(p int, run func(*machine.Node, *forall.Engine) *forall.Schedule, force bool) schedReport {
	rep := schedReport{
		mem: make([]int, p), local: make([]int, p),
		nonlocal: make([]int, p), recv: make([]int, p),
	}
	var mu sync.Mutex
	mach := sim.MustNew(p, machine.Ideal())
	mach.Run(func(nd *machine.Node) {
		eng := forall.NewEngine(nd)
		eng.ForceInspector = force
		s := run(nd, eng)
		mu.Lock()
		rep.kind = s.Kind()
		rep.mem[nd.ID()] = s.MemBytes()
		rep.local[nd.ID()] = s.LocalIters()
		rep.nonlocal[nd.ID()] = s.NonlocalIters()
		rep.recv[nd.ID()] = s.RecvCount()
		mu.Unlock()
	})
	return rep
}

func printSchedule(r schedReport) {
	fmt.Printf("\nschedule build: %v\n", r.kind)
	for q := range r.mem {
		fmt.Printf("  processor %d: %d local + %d nonlocal iterations, %d elements received, %d schedule bytes\n",
			q, r.local[q], r.nonlocal[q], r.recv[q], r.mem[q])
	}
}

func subscript(a, c int, v string) string {
	var s string
	switch a {
	case 1:
		s = v
	case -1:
		s = "-" + v
	default:
		s = fmt.Sprintf("%d*%s", a, v)
	}
	switch {
	case c > 0:
		s += fmt.Sprintf("+%d", c)
	case c < 0:
		s += fmt.Sprint(c)
	}
	return s
}
