// Command kalirun compiles and executes a Kali-language program on a
// simulated or real distributed-memory machine.
//
// Usage:
//
//	kalirun [-machine ncube|ipsc|ideal] [-backend sim|wall] [-p N] [-overlap on|off] [-fuse on|off] [-print name,...] [-stats] prog.kali
//
// -backend sim (default) runs on the virtual-clock simulator: times
// are deterministic cost-model predictions for the chosen -machine.
// -backend wall runs the same compiled schedules on real OS threads
// with shared-memory message queues: times are measured wall-clock
// seconds (and -machine only labels the report).
//
// -overlap on (default) executes foralls split-phase: sends are
// posted nonblocking before the interior iterations, and the boundary
// pass drains receives as they complete, so communication overlaps
// computation.  -overlap off restores the paper's phase-synchronous
// executor — same messages, same results, more critical-path time.
//
// -fuse on (default) aggregates messages across adjacent foralls:
// runs of consecutive loops whose reads are untouched by the earlier
// loops' writes post one combined message per processor pair up front
// and pipeline their boundary passes.  -fuse off runs every loop
// through the per-loop pipeline — same results and bytes, more
// messages and startup time.
//
// The program's processors declaration (the "real estate agent") may
// choose fewer processors than -p provides.  After execution the
// timing report is printed, plus the final contents of any arrays
// named with -print.  -stats adds the message/traffic breakdown,
// separating redistribute-statement traffic (and its phase time) from
// the forall phases.
//
// -serve addr starts the multi-tenant schedule server instead of
// running one program:
//
//	kalirun -serve :8080 [-pool N] [-cachedir DIR] [-p N] [-machine ...]
//
// POST a .kali program to /run (optionally ?print=a,b) to execute it
// on a pool of -pool machines sharing one schedule store; the JSON
// response carries the report including schedule-sharing counters.
// GET /stats snapshots the store and pool counters.  -cachedir
// persists compiled schedules so a restarted server warm-starts.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"kali/internal/core"
	"kali/internal/lang"
	"kali/internal/machine"
	"kali/internal/server"
)

func main() {
	machineName := flag.String("machine", "ncube", "cost model: ncube, ipsc, ideal")
	backend := flag.String("backend", "sim", "node runtime: sim (virtual clock) or wall (real threads)")
	procs := flag.Int("p", 8, "available processors")
	printArrays := flag.String("print", "", "comma-separated array/scalar names to print")
	stats := flag.Bool("stats", false, "print the traffic breakdown (forall vs redistribution)")
	noVM := flag.Bool("novm", false, "run forall bodies on the tree-walking interpreter instead of the bytecode VM")
	overlap := flag.String("overlap", "on", "communication/computation overlap: on (split-phase executors) or off (phase-synchronous)")
	fuse := flag.String("fuse", "on", "cross-loop message aggregation: on (adjacent foralls share sends) or off (per-loop pipeline)")
	serve := flag.String("serve", "", "serve HTTP on this address (e.g. :8080) instead of running one program")
	poolSize := flag.Int("pool", 4, "with -serve: number of pooled machines (max concurrent tenants)")
	cacheDir := flag.String("cachedir", "", "with -serve: persist compiled schedules here for warm starts")
	flag.Parse()

	if *serve != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: kalirun -serve addr [flags]")
			os.Exit(2)
		}
		params, ok := machine.ByName(*machineName)
		if !ok {
			fmt.Fprintf(os.Stderr, "kalirun: unknown machine %q\n", *machineName)
			os.Exit(2)
		}
		srv, err := server.New(server.Config{
			P:         *procs,
			Machines:  *poolSize,
			Params:    params,
			Backend:   *backend,
			CacheDir:  *cacheDir,
			NoOverlap: *overlap == "off",
			NoFuse:    *fuse == "off",
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kalirun:", err)
			os.Exit(1)
		}
		fmt.Printf("kalirun: serving on %s (pool %d × P=%d %s/%s)\n",
			*serve, *poolSize, *procs, params.Name, *backend)
		if err := http.ListenAndServe(*serve, srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "kalirun:", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kalirun [flags] prog.kali")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kalirun:", err)
		os.Exit(1)
	}
	params, ok := machine.ByName(*machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "kalirun: unknown machine %q\n", *machineName)
		os.Exit(2)
	}
	switch *backend {
	case "sim", "wall", "wallclock":
	default:
		fmt.Fprintf(os.Stderr, "kalirun: unknown backend %q (want sim or wall)\n", *backend)
		os.Exit(2)
	}
	switch *overlap {
	case "on", "off":
	default:
		fmt.Fprintf(os.Stderr, "kalirun: unknown -overlap %q (want on or off)\n", *overlap)
		os.Exit(2)
	}
	switch *fuse {
	case "on", "off":
	default:
		fmt.Fprintf(os.Stderr, "kalirun: unknown -fuse %q (want on or off)\n", *fuse)
		os.Exit(2)
	}

	prog, err := lang.Compile(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "kalirun: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	prog.NoVM = *noVM
	res, err := prog.Run(core.Config{P: *procs, Params: params, Backend: *backend, NoOverlap: *overlap == "off", NoFuse: *fuse == "off"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kalirun:", err)
		os.Exit(1)
	}

	fmt.Printf("machine: %s, backend: %s, processors chosen: %d\n",
		params.Name, res.Report.Backend, res.P)
	fmt.Printf("total %.4fs  executor %.4fs  inspector %.4fs  (overhead %.1f%%)\n",
		res.Report.Total, res.Report.Executor, res.Report.Inspector,
		res.Report.OverheadPct())
	if res.Report.Redist > 0 {
		fmt.Printf("redistribute %.4fs (outside the total above)\n", res.Report.Redist)
	}
	if *stats {
		r := res.Report
		fmt.Printf("messages: %d total, %d bytes\n", r.MsgsSent, r.BytesSent)
		fmt.Printf("  forall/other:  %d msgs, %d bytes\n", r.MsgsSent-r.RedistMsgs, r.BytesSent-r.RedistBytes)
		fmt.Printf("  redistribute:  %d msgs, %d bytes\n", r.RedistMsgs, r.RedistBytes)
		fmt.Printf("  cross-loop fused:  %d msgs, %d bytes\n", r.FusedMsgs, r.FusedBytes)
	}

	for _, name := range strings.Split(*printArrays, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		switch {
		case res.Arrays[name] != nil:
			fmt.Printf("%s = %v\n", name, clip(res.Arrays[name]))
		case res.IntArrays[name] != nil:
			fmt.Printf("%s = %v\n", name, res.IntArrays[name][:min(len(res.IntArrays[name]), 20)])
		default:
			if v, ok := res.Scalars[name]; ok {
				fmt.Printf("%s = %g\n", name, v)
			} else {
				fmt.Printf("%s: not found\n", name)
			}
		}
	}
}

func clip(xs []float64) []float64 {
	if len(xs) > 20 {
		return xs[:20]
	}
	return xs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
